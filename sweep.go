package tracep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Sweep fans a (benchmark × model) cross-product of simulations across a
// bounded pool of worker goroutines — the paper's §6 evaluation is 8
// workloads × 8 models, embarrassingly parallel. Every run is an
// independent, deterministic simulation, so a parallel sweep produces
// results bit-identical to a serial loop; only wall-clock time changes.
//
// Each benchmark program is built exactly once per sweep and shared,
// read-only, by every model cell in its row (programs are immutable at run
// time; see Simulator). An N-model sweep therefore performs N× fewer
// builds than a loop over NewBenchmark.
//
// The zero value is not useful: populate Benchmarks and Models, then call
// Run (one ResultSet at the end) or Stream (cells as they complete).
type Sweep struct {
	// Benchmarks and Models span the cross-product; every (benchmark,
	// model) pair is simulated once.
	Benchmarks []Benchmark
	Models     []Model

	// TargetInsts sizes each workload to roughly this many dynamic
	// instructions (like NewBenchmark); each run proceeds to architectural
	// halt.
	TargetInsts uint64

	// Config is the processor configuration for every run (nil =
	// DefaultConfig). It is validated once per run, like Simulator.Run.
	Config *Config

	// Seed scrambles initial branch-predictor state (see WithSeed).
	Seed int64

	// Parallelism bounds the worker pool (<= 0 = GOMAXPROCS).
	Parallelism int

	// Gate, when non-nil, additionally bounds concurrency across every
	// sweep sharing the same Gate: a worker holds a gate slot only while
	// actually simulating a cell. Parallelism still caps this sweep's own
	// workers; the Gate caps the machine-wide total (see NewGate).
	Gate *Gate

	// Progress, when set, receives every run's ProgressEvents (including
	// per-run Done events). Events from concurrent runs are serialised, so
	// the hook needs no locking of its own.
	Progress func(ProgressEvent)
	// ProgressInterval is the retired-instruction spacing of progress
	// events (0 = DefaultProgressInterval).
	ProgressInterval uint64
}

// sweepJob is one cell: a shared, immutable program (built once per
// benchmark row) plus the model to run it under. A failed build carries
// its error instead of a program, failing every cell of the row.
type sweepJob struct {
	bench    string
	prog     *Program
	buildErr error
	model    Model
}

// Stream starts the sweep and returns a channel that delivers every cell's
// Result exactly once, as it completes (completion order, not grid order —
// use ResultSet for deterministic ordering). The channel is closed once
// the sweep finishes; it is buffered for the full cross-product, so a
// consumer that stops reading never blocks a worker or leaks a goroutine.
//
// Failed runs are delivered like successful ones, with Result.Error /
// Result.Err set. Cancelling ctx stops the sweep promptly: in-flight
// simulations abort and are delivered as failed cells, unstarted cells are
// never delivered, and the channel is closed after the last in-flight cell
// lands.
func (sw *Sweep) Stream(ctx context.Context) <-chan *Result {
	total := len(sw.Benchmarks) * len(sw.Models)
	out := make(chan *Result, total)
	if total == 0 {
		close(out)
		return out
	}

	workers := sw.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	// Serialise the user's progress hook across workers.
	var progress func(ProgressEvent)
	if sw.Progress != nil {
		var mu sync.Mutex
		progress = func(ev ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			sw.Progress(ev)
		}
	}

	jobCh := make(chan sweepJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if res := sw.runOne(ctx, job, progress); res != nil {
					out <- res
				}
			}
		}()
	}

	go func() {
	feed:
		for _, bm := range sw.Benchmarks {
			// One build per benchmark row; every model cell shares the
			// immutable program.
			prog, err := buildProgram(bm, sw.TargetInsts)
			for _, m := range sw.Models {
				select {
				case jobCh <- sweepJob{bench: bm.Name, prog: prog, buildErr: err, model: m}:
				case <-ctx.Done():
					break feed
				}
			}
		}
		close(jobCh)
		wg.Wait()
		close(out)
	}()

	return out
}

// Run executes the sweep (via Stream) and returns the result set. Failed
// runs are captured per-cell (Result.Error / Result.Err) rather than
// aborting the sweep; inspect them with ResultSet.Err. Cancelling ctx
// stops the sweep promptly — in-flight simulations abort and unstarted
// cells stay absent — and Run returns the partial set together with
// ctx.Err().
func (sw *Sweep) Run(ctx context.Context) (*ResultSet, error) {
	benchNames := make([]string, len(sw.Benchmarks))
	for i, bm := range sw.Benchmarks {
		benchNames[i] = bm.Name
	}
	modelNames := make([]string, len(sw.Models))
	for i, m := range sw.Models {
		modelNames[i] = m.Name
	}
	rs := NewResultSetFor(benchNames, modelNames)
	for res := range sw.Stream(ctx) {
		rs.Add(res)
	}
	return rs, ctx.Err()
}

// runOne simulates one cell and returns its Result; a cell that never
// started (sweep already cancelled) returns nil.
func (sw *Sweep) runOne(ctx context.Context, job sweepJob, progress func(ProgressEvent)) *Result {
	if ctx.Err() != nil {
		return nil
	}
	fail := func(err error) *Result {
		return &Result{
			Benchmark: job.bench,
			Model:     job.model.Name,
			Error:     err.Error(),
			err:       err,
		}
	}
	if job.buildErr != nil {
		return fail(fmt.Errorf("tracep: %s: %w", job.bench, job.buildErr))
	}
	// Failed builds above are delivered without a slot — only real
	// simulations count against the shared gate. A cell still waiting for a
	// slot when the sweep is cancelled never started, so it is not
	// delivered.
	if !sw.Gate.acquire(ctx) {
		return nil
	}
	defer sw.Gate.release()
	opts := []Option{WithModel(job.model), WithLabel(job.bench)}
	if sw.Config != nil {
		opts = append(opts, WithConfig(*sw.Config))
	}
	if sw.Seed != 0 {
		opts = append(opts, WithSeed(sw.Seed))
	}
	if progress != nil {
		opts = append(opts, WithProgress(progress))
		if sw.ProgressInterval > 0 {
			opts = append(opts, WithProgressInterval(sw.ProgressInterval))
		}
	}
	res, err := New(job.prog, opts...).Run(ctx)
	if err != nil {
		return fail(err)
	}
	return res
}

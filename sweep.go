package tracep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tracep/internal/bench"
	"tracep/internal/proc"
)

// Sweep fans a (benchmark × model × seed) grid of simulations across a
// bounded pool of worker goroutines — the paper's §6 evaluation is 8
// workloads × 8 models, embarrassingly parallel, and the Seeds axis adds
// replicate runs per cell for mean±CI statistical reporting. Every run is
// an independent, deterministic simulation, so a parallel sweep produces
// results bit-identical to a serial loop; only wall-clock time changes.
//
// Each benchmark program is built exactly once per sweep and shared,
// read-only, by every model cell and seed replicate in its rows (programs
// are immutable at run time; see Simulator). An N-model, R-seed sweep
// therefore performs N×R fewer builds than a loop over NewBenchmark.
//
// The zero value is not useful: populate Benchmarks and Models, then call
// Run (one ResultSet at the end) or Stream (cells as they complete).
type Sweep struct {
	// Benchmarks and Models span the cross-product; every (benchmark,
	// model) pair is simulated once.
	Benchmarks []Benchmark
	Models     []Model

	// TargetInsts sizes each workload to roughly this many dynamic
	// instructions (like NewBenchmark); each run proceeds to architectural
	// halt.
	TargetInsts uint64

	// Config is the processor configuration for every run (nil =
	// DefaultConfig). It is validated once per run, like Simulator.Run.
	Config *Config

	// Seed scrambles initial branch-predictor state (see WithSeed). It is
	// the single-replicate degenerate case of Seeds: a sweep with Seeds
	// unset runs every cell once under Seed, exactly as before the seed
	// axis existed.
	Seed int64

	// Seeds, when non-empty, turns the sweep into a three-axis grid: every
	// (benchmark, model) cell runs once per seed, each replicate a fully
	// independent deterministic simulation fanned through the same worker
	// pool. Result.Seed records each replicate's seed, and the ResultSet
	// aggregates a cell's replicates into CellStats distributions
	// (mean ± 95% CI). Duplicate seeds are ignored (first occurrence
	// wins); seed 0 means canonical predictor state, like Seed. Nil
	// preserves the two-axis behaviour: one replicate per cell under Seed.
	Seeds []int64

	// Warmup fast-forwards this many instructions functionally before each
	// cell's measured region (see WithWarmup). The warm-up is
	// model-independent, so the sweep captures exactly one Snapshot per
	// benchmark — extending the build-once program sharing — and forks
	// every model cell of the row from it; an N-model sweep performs N×
	// fewer warm-ups than per-cell WithWarmup sessions, with byte-identical
	// results. A warm-up that fails (e.g. it runs past the program's halt)
	// fails every cell of the row, like a failed build.
	Warmup uint64

	// Snapshots provides pre-captured warm-up snapshots per benchmark row,
	// keyed by Benchmark.Name. A row with an entry forks every model cell
	// from the provided snapshot instead of capturing its own — the
	// row-level placement hook the sweep cluster uses: a coordinator
	// captures (or fetches from its content-addressed store) one snapshot
	// per row and ships it to whichever node runs the row, and the
	// receiving node's Sweep restores from it without re-running the
	// functional warm-up. The snapshot must have been captured from the
	// same benchmark program and a compatible configuration (see
	// Snapshot.CompatibleWith); mismatches fail the row's cells with errors
	// wrapping ErrIncompatibleSnapshot. Rows without an entry fall back to
	// Warmup/WarmupFor capture as usual.
	//
	// Snapshots are keyed by benchmark only, but a warmed-up snapshot
	// embeds seed-dependent predictor state: under a multi-seed Seeds axis
	// a provided snapshot can only match one seed row's configuration, and
	// the other rows fail compatibility. The cluster therefore places work
	// per (benchmark, seed) row, each shipped as its own single-seed sweep.
	Snapshots map[string]*Snapshot

	// WarmupFor overrides Warmup per benchmark row, keyed by Benchmark.Name:
	// workloads reach steady state at different depths (a tight kernel warms
	// in thousands of instructions, a call-heavy workload in hundreds of
	// thousands), so a sweep can give each row its own warm-up length. A
	// missing key falls back to Warmup; an explicit zero entry forces that
	// row to run cold. Stats.WarmupInsts records each cell's effective
	// warm-up, so baseline diffs remain like-for-like per cell.
	WarmupFor map[string]uint64

	// Parallelism bounds the worker pool (<= 0 = GOMAXPROCS).
	Parallelism int

	// Gate, when non-nil, additionally bounds concurrency across every
	// sweep sharing the same Gate: a worker holds a gate slot only while
	// actually simulating a cell. Parallelism still caps this sweep's own
	// workers; the Gate caps the machine-wide total (see NewGate).
	Gate *Gate

	// Progress, when set, receives every run's ProgressEvents (including
	// per-run Done events). Events from concurrent runs are serialised, so
	// the hook needs no locking of its own.
	Progress func(ProgressEvent)
	// ProgressInterval is the retired-instruction spacing of progress
	// events (0 = DefaultProgressInterval).
	ProgressInterval uint64
}

// sweepRow is the state one (benchmark, seed) row shares across its model
// cells: the immutable program (built once per benchmark, in the feeder,
// and shared read-only by every seed row) and, when the sweep warms up,
// the row's snapshot — captured lazily by the first worker that needs it,
// on a worker goroutine, so captures for different rows proceed in
// parallel. The seed travels on the row because warm-up snapshots carry
// predictor state: replicates under different seeds warm up to different
// machine states, so the row — the cluster's placement unit — is
// benchmark × seed, not benchmark alone. A failed build or warm-up fails
// every cell of the row.
type sweepRow struct {
	sw       *Sweep
	bench    string
	seed     int64
	prog     *Program
	buildErr error
	// recorded carries the row's .tptrace stream for recorded-trace
	// benchmarks (Benchmark.Recorded); every cell opens its own cursor.
	recorded *bench.RecordedTrace
	// warmup is the row's effective warm-up length (WarmupFor override or
	// the sweep-wide Warmup), resolved once at feed time.
	warmup uint64
	// provided is the row's pre-captured snapshot (Sweep.Snapshots), which
	// supersedes capture entirely.
	provided *Snapshot

	capture sync.Once
	snap    *Snapshot
	snapErr error
}

// snapshot returns the row's shared warm-up snapshot (nil when the sweep
// does not warm up), capturing it on first call. The capturing goroutine
// holds a Gate slot only for the capture itself — warm-up CPU work is
// bounded exactly like simulation work — while concurrent callers of the
// same row wait slot-free until the one capture finishes, leaving the
// gate's capacity to other sweeps. The snapshot is immutable and
// restore-side state is always cloned, so handing it to every cell is
// race-free.
func (r *sweepRow) snapshot(ctx context.Context, gate *Gate) (*Snapshot, error) {
	if r.provided != nil {
		return r.provided, nil
	}
	if r.warmup == 0 {
		return nil, nil
	}
	r.capture.Do(func() {
		if !gate.acquire(ctx) {
			r.snapErr = ctx.Err()
			return
		}
		defer gate.release()
		r.snap, r.snapErr = proc.CaptureSnapshot(ctx, r.prog, r.sw.cellConfig(r.seed), r.warmup)
	})
	return r.snap, r.snapErr
}

// warmupFor resolves the effective warm-up length for a benchmark row: the
// per-benchmark override when present, the sweep-wide default otherwise.
func (sw *Sweep) warmupFor(bench string) uint64 {
	if n, ok := sw.WarmupFor[bench]; ok {
		return n
	}
	return sw.Warmup
}

// sweepJob is one cell: the shared row plus the model to run it under.
type sweepJob struct {
	row   *sweepRow
	model Model
}

// cellConfig resolves the one configuration every cell of a seed row runs
// under and the row's snapshot is captured with (runOne passes it via
// WithConfig), so capture and restore agree by construction.
func (sw *Sweep) cellConfig(seed int64) Config {
	cfg := DefaultConfig()
	if sw.Config != nil {
		cfg = *sw.Config
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	return cfg
}

// effectiveSeeds resolves the sweep's seed axis: Seeds deduplicated in
// order when set, otherwise the single-replicate axis {Seed}.
func (sw *Sweep) effectiveSeeds() []int64 {
	if len(sw.Seeds) == 0 {
		return []int64{sw.Seed}
	}
	seen := make(map[int64]bool, len(sw.Seeds))
	out := make([]int64, 0, len(sw.Seeds))
	for _, s := range sw.Seeds {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Stream starts the sweep and returns a channel that delivers every cell's
// Result exactly once, as it completes (completion order, not grid order —
// use ResultSet for deterministic ordering). The channel is closed once
// the sweep finishes; it is buffered for the full cross-product, so a
// consumer that stops reading never blocks a worker or leaks a goroutine.
//
// Failed runs are delivered like successful ones, with Result.Error /
// Result.Err set. Cancelling ctx stops the sweep promptly: in-flight
// simulations abort and are delivered as failed cells, unstarted cells are
// never delivered, and the channel is closed after the last in-flight cell
// lands.
func (sw *Sweep) Stream(ctx context.Context) <-chan *Result {
	seeds := sw.effectiveSeeds()
	total := len(sw.Benchmarks) * len(sw.Models) * len(seeds)
	out := make(chan *Result, total)
	if total == 0 {
		close(out)
		return out
	}

	workers := sw.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	// Serialise the user's progress hook across workers.
	var progress func(ProgressEvent)
	if sw.Progress != nil {
		var mu sync.Mutex
		progress = func(ev ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			sw.Progress(ev)
		}
	}

	jobCh := make(chan sweepJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if res := sw.runOne(ctx, job, progress); res != nil {
					out <- res
				}
			}
		}()
	}

	go func() {
	feed:
		for _, bm := range sw.Benchmarks {
			// One build per benchmark; every seed row — and every model cell
			// within it — shares the immutable program. Each seed gets its own
			// row because the row's warm-up snapshot captures seed-dependent
			// predictor state (captured worker-side on first need).
			prog, err := buildProgram(bm, sw.TargetInsts)
			for _, seed := range seeds {
				row := &sweepRow{sw: sw, bench: bm.Name, seed: seed, prog: prog,
					buildErr: err, recorded: bm.Recorded, warmup: sw.warmupFor(bm.Name),
					provided: sw.Snapshots[bm.Name]}
				for _, m := range sw.Models {
					select {
					case jobCh <- sweepJob{row: row, model: m}:
					case <-ctx.Done():
						break feed
					}
				}
			}
		}
		close(jobCh)
		wg.Wait()
		close(out)
	}()

	return out
}

// Run executes the sweep (via Stream) and returns the result set. Failed
// runs are captured per-cell (Result.Error / Result.Err) rather than
// aborting the sweep; inspect them with ResultSet.Err. Cancelling ctx
// stops the sweep promptly — in-flight simulations abort and unstarted
// cells stay absent — and Run returns the partial set together with
// ctx.Err().
func (sw *Sweep) Run(ctx context.Context) (*ResultSet, error) {
	benchNames := make([]string, len(sw.Benchmarks))
	for i, bm := range sw.Benchmarks {
		benchNames[i] = bm.Name
	}
	modelNames := make([]string, len(sw.Models))
	for i, m := range sw.Models {
		modelNames[i] = m.Name
	}
	rs := NewResultSetGrid(benchNames, modelNames, sw.effectiveSeeds())
	for res := range sw.Stream(ctx) {
		rs.Add(res)
	}
	return rs, ctx.Err()
}

// runOne simulates one cell and returns its Result; a cell that never
// started (sweep already cancelled) returns nil.
func (sw *Sweep) runOne(ctx context.Context, job sweepJob, progress func(ProgressEvent)) *Result {
	if ctx.Err() != nil {
		return nil
	}
	row := job.row
	fail := func(err error) *Result {
		return &Result{
			Benchmark: row.bench,
			Model:     job.model.Name,
			Seed:      row.seed,
			Error:     err.Error(),
			err:       err,
		}
	}
	if row.buildErr != nil {
		return fail(fmt.Errorf("tracep: %s: %w", row.bench, row.buildErr))
	}
	// The row's one warm-up capture runs under its own gate slot (see
	// sweepRow.snapshot); a cell whose warm-up was abandoned by
	// cancellation never started, so — like a cell still waiting for a
	// slot below — it is not delivered.
	snap, err := row.snapshot(ctx, sw.Gate)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return fail(fmt.Errorf("tracep: %s: %w", row.bench, err))
	}
	// Failed builds and warm-ups above are delivered without a slot — only
	// real simulation counts against the shared gate.
	if !sw.Gate.acquire(ctx) {
		return nil
	}
	defer sw.Gate.release()
	// Every cell runs under its row's cellConfig — the exact configuration
	// the row snapshot is captured with, so capture and restore cannot
	// drift.
	opts := []Option{WithModel(job.model), WithLabel(row.bench), WithConfig(sw.cellConfig(row.seed))}
	if snap != nil {
		opts = append(opts, WithSnapshot(snap))
	}
	if progress != nil {
		opts = append(opts, WithProgress(progress))
		if sw.ProgressInterval > 0 {
			opts = append(opts, WithProgressInterval(sw.ProgressInterval))
		}
	}
	sim := New(row.prog, opts...)
	// Recorded-trace rows verify against their .tptrace stream; New takes
	// the prebuilt program, so the recording handle travels on the row.
	sim.recorded = row.recorded
	res, err := sim.Run(ctx)
	if err != nil {
		return fail(err)
	}
	res.Seed = row.seed
	return res
}

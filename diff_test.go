package tracep_test

import (
	"encoding/json"
	"strings"
	"testing"

	"tracep"
)

// diffFixture builds a 2×2 baseline: IPCs 2.0, 3.0, 1.5, 2.5.
func diffBaseline() *tracep.ResultSet {
	rs := tracep.NewResultSetFor([]string{"compress", "vortex"}, []string{"base", "FG"})
	rs.Add(cell("compress", "base", 2.0))
	rs.Add(cell("compress", "FG", 3.0))
	rs.Add(cell("vortex", "base", 1.5))
	rs.Add(cell("vortex", "FG", 2.5))
	return rs
}

func TestDiffIdenticalSetsOK(t *testing.T) {
	d := diffBaseline().Diff(diffBaseline(), tracep.Tolerances{})
	if !d.OK() {
		t.Fatalf("identical sets must pass the strictest gate: %+v", d.Regressions())
	}
	if len(d.Cells) != 4 {
		t.Errorf("diff has %d cells, want 4", len(d.Cells))
	}
	for _, c := range d.Cells {
		if c.Kind != tracep.DiffOK || c.DeltaPct != 0 {
			t.Errorf("cell %s/%s = %+v, want ok with zero delta", c.Benchmark, c.Model, c)
		}
	}
}

func TestDiffDetectsRegressionWithinTolerance(t *testing.T) {
	cur := diffBaseline()
	cur.Add(cell("compress", "base", 1.9)) // -5% vs baseline 2.0
	cur.Add(cell("vortex", "FG", 2.48))    // -0.8%

	// 5% drop regresses under a 2% gate; the 0.8% drop does not.
	d := cur.Diff(diffBaseline(), tracep.Tolerances{IPCPct: 2})
	reg := d.Regressions()
	if len(reg) != 1 || reg[0].Benchmark != "compress" || reg[0].Model != "base" {
		t.Fatalf("regressions = %+v, want exactly compress/base", reg)
	}
	if reg[0].Kind != tracep.DiffRegression || reg[0].DeltaPct > -4.9 || reg[0].DeltaPct < -5.1 {
		t.Errorf("regression cell = %+v, want ~-5%%", reg[0])
	}

	// A 10% gate tolerates both.
	if d := cur.Diff(diffBaseline(), tracep.Tolerances{IPCPct: 10}); !d.OK() {
		t.Errorf("10%% gate must pass: %+v", d.Regressions())
	}
	// Improvements are never regressions, even under a zero gate.
	up := diffBaseline()
	up.Add(cell("compress", "base", 4.0))
	if d := up.Diff(diffBaseline(), tracep.Tolerances{}); !d.OK() {
		t.Errorf("improvement flagged as regression: %+v", d.Regressions())
	}
}

func TestDiffMissingAndNewCells(t *testing.T) {
	cur := tracep.NewResultSetFor([]string{"compress", "gcc"}, []string{"base", "FG"})
	cur.Add(cell("compress", "base", 2.0))
	cur.Add(cell("compress", "FG", 3.0))
	cur.Add(cell("gcc", "base", 1.0)) // not in baseline
	cur.Add(&tracep.Result{Benchmark: "gcc", Model: "FG", Error: "boom"})

	d := cur.Diff(diffBaseline(), tracep.Tolerances{})
	kinds := map[string]tracep.DiffKind{}
	for _, c := range d.Cells {
		kinds[c.Benchmark+"/"+c.Model] = c.Kind
	}
	if kinds["vortex/base"] != tracep.DiffMissing || kinds["vortex/FG"] != tracep.DiffMissing {
		t.Errorf("vortex row kinds = %v, want missing", kinds)
	}
	if kinds["gcc/base"] != tracep.DiffNew {
		t.Errorf("gcc/base kind = %v, want new", kinds["gcc/base"])
	}
	if _, ok := kinds["gcc/FG"]; ok {
		t.Error("a cell with statistics on neither side must not appear in the diff")
	}
	if d.OK() {
		t.Error("missing baseline cells must regress by default")
	}
	if d := cur.Diff(diffBaseline(), tracep.Tolerances{AllowMissing: true}); !d.OK() {
		t.Errorf("AllowMissing must tolerate the smaller sweep: %+v", d.Regressions())
	}

	// A baseline success that now fails carries the error text.
	failed := diffBaseline()
	failed.Add(&tracep.Result{Benchmark: "compress", Model: "base", Error: "watchdog: stuck"})
	d = failed.Diff(diffBaseline(), tracep.Tolerances{})
	for _, c := range d.Cells {
		if c.Benchmark == "compress" && c.Model == "base" {
			if c.Kind != tracep.DiffMissing || !c.Regression || !strings.Contains(c.Detail, "watchdog") {
				t.Errorf("failed cell delta = %+v, want missing regression with error detail", c)
			}
		}
	}
}

// statsCell builds a result whose cell carries recovery counts alongside
// IPC, for the extended-tolerance checks.
func statsCell(bench, model string, insts, cycles, recoveries uint64) *tracep.Result {
	return &tracep.Result{
		Benchmark: bench,
		Model:     model,
		Stats:     &tracep.Stats{RetiredInsts: insts, Cycles: cycles, Recoveries: recoveries},
	}
}

// TestDiffTraceMispAndRecoveryGate: the gate watches more than IPC — a
// cell whose IPC holds steady but whose trace mispredictions (== recovery
// count, normalised per 1000 insts) rise beyond tolerance regresses, and
// the tolerances loosen each dimension independently.
func TestDiffTraceMispAndRecoveryGate(t *testing.T) {
	base := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
	base.Add(statsCell("compress", "base", 10_000, 5_000, 100)) // 10 misp/1000

	worse := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
	worse.Add(statsCell("compress", "base", 10_000, 5_000, 130)) // 13 misp/1000, +30% recoveries

	// Zero-value tolerances: any rise regresses (in both dimensions; the
	// reasons are joined in Detail).
	d := worse.Diff(base, tracep.Tolerances{})
	if d.OK() {
		t.Fatal("recovery rise with flat IPC must regress under the strict gate")
	}
	reg := d.Regressions()
	if len(reg) != 1 {
		t.Fatalf("regressions = %+v, want exactly one cell", reg)
	}
	for _, want := range []string{"trace mispredictions rose 3.00/1000", "recoveries rose 100 -> 130"} {
		if !strings.Contains(reg[0].Detail, want) {
			t.Errorf("detail %q missing %q", reg[0].Detail, want)
		}
	}
	if reg[0].BaselineRecoveries != 100 || reg[0].CurrentRecoveries != 130 {
		t.Errorf("cell recovery counts = %d -> %d, want 100 -> 130",
			reg[0].BaselineRecoveries, reg[0].CurrentRecoveries)
	}

	// Loosening only one dimension is not enough...
	if d := worse.Diff(base, tracep.Tolerances{TraceMispPer1000: 5}); d.OK() {
		t.Error("recovery-count rise must still regress when only trace misp is tolerated")
	}
	if d := worse.Diff(base, tracep.Tolerances{RecoveriesPct: 50}); d.OK() {
		t.Error("trace-misp rise must still regress when only recoveries are tolerated")
	}
	// ...both together pass.
	if d := worse.Diff(base, tracep.Tolerances{TraceMispPer1000: 5, RecoveriesPct: 50}); !d.OK() {
		t.Errorf("loosened gate must pass: %+v", d.Regressions())
	}

	// Improvements are never regressions.
	better := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
	better.Add(statsCell("compress", "base", 10_000, 5_000, 40))
	if d := better.Diff(base, tracep.Tolerances{}); !d.OK() {
		t.Errorf("fewer recoveries flagged as regression: %+v", d.Regressions())
	}

	// A zero-recovery baseline regresses on any rise at all, whatever the
	// percentage tolerance (there is no base to scale it by).
	zero := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
	zero.Add(statsCell("compress", "base", 10_000, 5_000, 0))
	one := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
	one.Add(statsCell("compress", "base", 10_000, 5_000, 1))
	if d := one.Diff(zero, tracep.Tolerances{TraceMispPer1000: 5, RecoveriesPct: 1000}); d.OK() {
		t.Error("rise from a zero-recovery baseline must regress regardless of RecoveriesPct")
	}
}

// TestDiffNonOverlappingBaselineFails pins the vacuous-pass guard: a
// baseline that shares no cells with the current set (empty file, renamed
// benchmarks) compares nothing and must FAIL the gate, not pass it.
func TestDiffNonOverlappingBaselineFails(t *testing.T) {
	empty := tracep.NewResultSet()
	d := diffBaseline().Diff(empty, tracep.Tolerances{IPCPct: 100})
	if d.OK() {
		t.Error("empty baseline must fail the gate, not pass vacuously")
	}
	if d.Compared() != 0 {
		t.Errorf("Compared() = %d, want 0", d.Compared())
	}

	renamed := tracep.NewResultSetFor([]string{"other"}, []string{"base"})
	renamed.Add(cell("other", "base", 2.0))
	d = diffBaseline().Diff(renamed, tracep.Tolerances{AllowMissing: true})
	if d.OK() {
		t.Error("non-overlapping baseline must fail even with AllowMissing")
	}

	var text strings.Builder
	d.WriteText(&text)
	if !strings.Contains(text.String(), "FAIL: no cells compared") {
		t.Errorf("rendering must flag the empty comparison:\n%s", text.String())
	}
}

func TestDiffDeterministicOrderAndRenderings(t *testing.T) {
	cur := diffBaseline()
	cur.Add(cell("compress", "base", 1.0)) // -50%
	d := cur.Diff(diffBaseline(), tracep.Tolerances{IPCPct: 2})

	var order []string
	for _, c := range d.Cells {
		order = append(order, c.Benchmark+"/"+c.Model)
	}
	want := "compress/base,compress/FG,vortex/base,vortex/FG"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("cell order = %s, want %s (baseline grid order)", got, want)
	}

	var text strings.Builder
	d.WriteText(&text)
	for _, want := range []string{"RESULTSET DIFF", "REGRESSION", "IPC dropped 50.00%", "FAIL: 1 of 4 cells regressed"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text rendering missing %q:\n%s", want, text.String())
		}
	}

	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back tracep.Diff
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(d.Cells) || back.Tolerances != d.Tolerances {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
	if back.OK() {
		t.Error("round-tripped diff must still report the regression")
	}
}

// warmCell builds a cell whose stats carry warm-up metadata and cache-miss
// counts.
func warmCell(bench, model string, ipc float64, warmup, icMisses, dcMisses uint64) *tracep.Result {
	res := cell(bench, model, ipc)
	res.Stats.WarmupInsts = warmup
	res.Stats.ICMisses = icMisses
	res.Stats.DCMisses = dcMisses
	return res
}

// TestDiffWarmupMismatchIsIncomparable: cells measured after different
// warm-ups must never be numerically compared — they are flagged as
// incomparable regressions regardless of how good the numbers look.
func TestDiffWarmupMismatchIsIncomparable(t *testing.T) {
	cur := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
	// Higher IPC than baseline, but over a different measured region.
	cur.Add(warmCell("compress", "base", 9.9, 5000, 0, 0))
	base := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
	base.Add(cell("compress", "base", 2.0))

	d := cur.Diff(base, tracep.Tolerances{IPCPct: 100})
	if d.OK() {
		t.Fatal("warm-vs-cold comparison must fail the gate")
	}
	c := d.Cells[0]
	if c.Kind != tracep.DiffIncomparable || !c.Regression {
		t.Fatalf("cell = %+v, want incomparable regression", c)
	}
	if c.BaselineWarmup != 0 || c.CurrentWarmup != 5000 {
		t.Errorf("warm-up metadata = %d/%d, want 0/5000", c.BaselineWarmup, c.CurrentWarmup)
	}
	if !strings.Contains(c.Detail, "warm-up mismatch") {
		t.Errorf("detail = %q, want warm-up mismatch explanation", c.Detail)
	}

	// The rendered verdict names the warm-up mismatch, not a grid overlap
	// problem (nothing compared, but only because every cell was
	// incomparable).
	if d.Compared() != 0 || d.Incomparable() != 1 {
		t.Errorf("Compared/Incomparable = %d/%d, want 0/1", d.Compared(), d.Incomparable())
	}
	var text strings.Builder
	d.WriteText(&text)
	if !strings.Contains(text.String(), "incomparable (warm-up mismatch)") {
		t.Errorf("verdict missing incomparable explanation:\n%s", text.String())
	}

	// Matching warm-ups on both sides compare normally.
	warmBase := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
	warmBase.Add(warmCell("compress", "base", 2.0, 5000, 0, 0))
	if d := cur.Diff(warmBase, tracep.Tolerances{}); !d.OK() {
		t.Errorf("matching warm-ups must compare: %+v", d.Regressions())
	}
}

// TestDiffCacheMissGate: rises in I-/D-cache misses per 1000 instructions
// regress beyond Tolerances.CacheMissPer1000; drops never do.
func TestDiffCacheMissGate(t *testing.T) {
	mk := func(ic, dc uint64) *tracep.ResultSet {
		rs := tracep.NewResultSetFor([]string{"compress"}, []string{"base"})
		rs.Add(warmCell("compress", "base", 2.0, 0, ic, dc)) // 2000 retired insts
		return rs
	}
	base := mk(10, 20)

	// D-cache misses rise 20 -> 30: +5/1000 insts over 2000 retired insts.
	d := mk(10, 30).Diff(base, tracep.Tolerances{})
	if d.OK() {
		t.Fatal("D-cache miss rise must regress under a zero gate")
	}
	if c := d.Regressions()[0]; !strings.Contains(c.Detail, "D-cache") {
		t.Errorf("detail = %q, want D-cache reason", c.Detail)
	}
	// The same rise passes a 5/1000 gate.
	if d := mk(10, 30).Diff(base, tracep.Tolerances{CacheMissPer1000: 5}); !d.OK() {
		t.Errorf("rise within tolerance regressed: %+v", d.Regressions())
	}
	// I-cache rises are gated independently.
	d = mk(14, 20).Diff(base, tracep.Tolerances{CacheMissPer1000: 1})
	if d.OK() {
		t.Fatal("I-cache miss rise must regress beyond the gate")
	}
	if c := d.Regressions()[0]; !strings.Contains(c.Detail, "I-cache") {
		t.Errorf("detail = %q, want I-cache reason", c.Detail)
	}
	// Drops are never regressions.
	if d := mk(0, 0).Diff(base, tracep.Tolerances{}); !d.OK() {
		t.Errorf("miss-rate drop regressed: %+v", d.Regressions())
	}
	// Metadata lands in the cell.
	c := mk(10, 30).Diff(base, tracep.Tolerances{}).Cells[0]
	if c.BaselineDCacheMiss != 10 || c.CurrentDCacheMiss != 15 {
		t.Errorf("D-cache miss rates = %.1f/%.1f, want 10/15 per 1000", c.BaselineDCacheMiss, c.CurrentDCacheMiss)
	}
}

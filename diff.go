package tracep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// cellKey addresses one (benchmark, model) cell of the comparison grid.
// Diff compares cells — a multi-seed set's replicates are aggregated into
// their cell's distributions first — so the key carries no seed.
type cellKey struct {
	bench, model string
}

// Tolerances bounds the drift a Diff accepts before flagging a cell as a
// regression. The zero value is the strictest gate: any IPC drop, any rise
// in trace mispredictions or recoveries, regresses, and every baseline
// cell must be present in the current set. Simulations are deterministic,
// so the strict gate is the natural default; tolerances exist to absorb
// intended small perturbations.
type Tolerances struct {
	// IPCPct is the maximum tolerated relative IPC drop, in percent (2.0
	// allows up to a 2% slowdown per cell). Improvements are never
	// regressions.
	IPCPct float64 `json:"ipc_pct"`
	// TraceMispPer1000 is the maximum tolerated rise in trace
	// mispredictions per 1000 retired instructions (Stats.TraceMispPer1000,
	// an absolute delta — 0.5 allows half an extra misprediction per 1000
	// insts). Drops are never regressions.
	//
	// Note that every trace misprediction triggers one recovery, so this
	// and RecoveriesPct watch the same event through different lenses: this
	// gate is a rate, robust to runs retiring different instruction counts;
	// RecoveriesPct bounds the raw count. For same-length runs a rise trips
	// both (and Detail reports both reasons); to absorb an intended
	// perturbation, loosen both.
	TraceMispPer1000 float64 `json:"trace_misp_per_1000,omitempty"`
	// RecoveriesPct is the maximum tolerated relative rise in the total
	// recovery count (Stats.Recoveries), in percent. A baseline cell with
	// zero recoveries regresses on any rise at all — there is no base to
	// scale the tolerance by. See the TraceMispPer1000 note on how the two
	// gates relate.
	RecoveriesPct float64 `json:"recoveries_pct,omitempty"`
	// CacheMissPer1000 is the maximum tolerated rise in cache misses per
	// 1000 retired instructions, applied to the instruction cache and the
	// data cache independently (Stats.ICMissPer1000, Stats.DCMissPer1000;
	// absolute deltas, like TraceMispPer1000). Drops are never regressions.
	CacheMissPer1000 float64 `json:"cache_miss_per_1000,omitempty"`
	// AllowMissing tolerates baseline cells that are absent from (or
	// failed in) the current set — e.g. when gating a deliberately smaller
	// sweep against a full baseline.
	AllowMissing bool `json:"allow_missing,omitempty"`
}

// ParseTolerances parses a Tolerances from one flag-friendly string, in
// either of two encodings:
//
//   - JSON, when the spec starts with "{": the Tolerances JSON shape,
//     unknown fields rejected — e.g. {"ipc_pct":2,"allow_missing":true}.
//   - comma-separated k=v pairs otherwise, with short keys: ipc (IPCPct),
//     tmisp (TraceMispPer1000), recoveries (RecoveriesPct), miss
//     (CacheMissPer1000), and allow-missing (bool; bare "allow-missing"
//     means true) — e.g. "ipc=2,miss=0.5,allow-missing".
//
// An empty spec returns the zero (strictest) Tolerances. cmd/experiments'
// -tolerances flag and server.SweepRequest.Tolerances both speak this
// encoding.
func ParseTolerances(spec string) (Tolerances, error) {
	var tol Tolerances
	s := strings.TrimSpace(spec)
	if s == "" {
		return tol, nil
	}
	if strings.HasPrefix(s, "{") {
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&tol); err != nil {
			return Tolerances{}, fmt.Errorf("tracep: parsing tolerances JSON: %w", err)
		}
		return tol, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		num := func() (float64, error) {
			if !hasVal {
				return 0, fmt.Errorf("tracep: tolerance %q needs a value (%s=<number>)", key, key)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return 0, fmt.Errorf("tracep: tolerance %q: %w", key, err)
			}
			return v, nil
		}
		var err error
		switch key {
		case "ipc":
			tol.IPCPct, err = num()
		case "tmisp":
			tol.TraceMispPer1000, err = num()
		case "recoveries":
			tol.RecoveriesPct, err = num()
		case "miss":
			tol.CacheMissPer1000, err = num()
		case "allow-missing":
			if !hasVal {
				tol.AllowMissing = true
			} else if tol.AllowMissing, err = strconv.ParseBool(val); err != nil {
				err = fmt.Errorf("tracep: tolerance %q: %w", key, err)
			}
		default:
			err = fmt.Errorf("tracep: unknown tolerance key %q (want ipc, tmisp, recoveries, miss, allow-missing)", key)
		}
		if err != nil {
			return Tolerances{}, err
		}
	}
	return tol, nil
}

// DiffKind classifies one cell of a Diff.
type DiffKind string

const (
	// DiffOK: both sets have statistics and the IPC delta is within
	// tolerance (improvements included).
	DiffOK DiffKind = "ok"
	// DiffRegression: both sets have statistics and current IPC dropped
	// beyond Tolerances.IPCPct.
	DiffRegression DiffKind = "regression"
	// DiffMissing: the baseline cell succeeded but the current set has no
	// statistics for it (absent, or failed — Detail carries the error
	// text). A regression unless Tolerances.AllowMissing is set.
	DiffMissing DiffKind = "missing"
	// DiffNew: the current cell succeeded but the baseline has no
	// statistics for it. Informational, never a regression.
	DiffNew DiffKind = "new"
	// DiffIncomparable: both sets have statistics but they measure
	// different regions — their warm-up instruction counts differ — so no
	// number is comparable. Always a regression: either align the warm-up
	// configuration or refresh the baseline (see the baseline-refresh CI
	// workflow).
	DiffIncomparable DiffKind = "incomparable"
)

// CellDelta is one (benchmark, model) cell of a Diff.
type CellDelta struct {
	Benchmark string   `json:"benchmark"`
	Model     string   `json:"model"`
	Kind      DiffKind `json:"kind"`
	// BaselineIPC and CurrentIPC are 0 when the respective side has no
	// statistics for the cell. On a multi-replicate side they are the
	// cell's mean IPC; on a single-replicate side the point IPC exactly.
	BaselineIPC float64 `json:"baseline_ipc,omitempty"`
	CurrentIPC  float64 `json:"current_ipc,omitempty"`
	// BaselineN/CurrentN count each side's successful seed replicates, and
	// BaselineIPCCI/CurrentIPCCI carry the 95% CI half-widths on the mean
	// IPC. Populated only on the interval-gated path (either side N > 1);
	// single-point comparisons leave them zero, keeping pre-seeds diff JSON
	// byte-identical.
	BaselineN     int     `json:"baseline_n,omitempty"`
	CurrentN      int     `json:"current_n,omitempty"`
	BaselineIPCCI float64 `json:"baseline_ipc_ci,omitempty"`
	CurrentIPCCI  float64 `json:"current_ipc_ci,omitempty"`
	// DeltaPct is the relative IPC change in percent (negative = slower);
	// meaningful only when both sides have statistics.
	DeltaPct float64 `json:"delta_pct,omitempty"`
	// Trace mispredictions per 1000 retired instructions and total recovery
	// counts on each side, for the Tolerances.TraceMispPer1000 and
	// Tolerances.RecoveriesPct checks; 0 when the side has no statistics.
	BaselineTraceMisp  float64 `json:"baseline_trace_misp,omitempty"`
	CurrentTraceMisp   float64 `json:"current_trace_misp,omitempty"`
	BaselineRecoveries uint64  `json:"baseline_recoveries,omitempty"`
	CurrentRecoveries  uint64  `json:"current_recoveries,omitempty"`
	// Cache misses per 1000 retired instructions on each side, for the
	// Tolerances.CacheMissPer1000 check; 0 when the side has no statistics.
	BaselineICacheMiss float64 `json:"baseline_icache_miss,omitempty"`
	CurrentICacheMiss  float64 `json:"current_icache_miss,omitempty"`
	BaselineDCacheMiss float64 `json:"baseline_dcache_miss,omitempty"`
	CurrentDCacheMiss  float64 `json:"current_dcache_miss,omitempty"`
	// Warm-up instruction counts on each side (Stats.WarmupInsts). A
	// mismatch makes the cell DiffIncomparable.
	BaselineWarmup uint64 `json:"baseline_warmup,omitempty"`
	CurrentWarmup  uint64 `json:"current_warmup,omitempty"`
	// Detail carries context for non-ok cells, e.g. the failed run's error
	// text.
	Detail string `json:"detail,omitempty"`
	// Regression marks the cell as failing the gate under the Diff's
	// tolerances.
	Regression bool `json:"regression,omitempty"`
}

// Diff is the cell-by-cell comparison of a current ResultSet against a
// baseline, under a Tolerances gate. Cells appear in deterministic order:
// the baseline's benchmark-major grid first, then current-only cells in
// the current set's grid order. Diff marshals to JSON directly; WriteText
// renders the human table.
type Diff struct {
	Tolerances Tolerances  `json:"tolerances"`
	Cells      []CellDelta `json:"cells"`
}

// Diff compares r (the current results) against baseline under tol,
// cell by cell — a multi-seed set's replicates are aggregated into their
// cell's CellStats distributions first. Single-replicate cells on both
// sides compare as exact points, the pre-seeds behaviour bit-for-bit; once
// either side carries replicates the gate becomes interval-aware: a metric
// regresses only when its mean drifts beyond tolerance AND the two 95%
// confidence intervals are disjoint, so replicate noise within overlapping
// intervals never fails the gate.
//
// Only cells with statistics participate as successes; failed cells count
// as absent on their side (a baseline failure that now succeeds is
// DiffNew, a baseline success that now fails is DiffMissing with the error
// text in Detail).
func (r *ResultSet) Diff(baseline *ResultSet, tol Tolerances) *Diff {
	d := &Diff{Tolerances: tol}
	seen := make(map[cellKey]bool)
	for _, b := range baseline.Benches() {
		for _, m := range baseline.Models() {
			if _, ok := baseline.Get(b, m); !ok {
				continue
			}
			seen[cellKey{b, m}] = true
			d.Cells = append(d.Cells, compareCell(r, baseline, b, m, tol))
		}
	}
	for _, b := range r.Benches() {
		for _, m := range r.Models() {
			if seen[cellKey{b, m}] {
				continue
			}
			cur, ok := r.Get(b, m)
			if !ok {
				continue
			}
			c := CellDelta{
				Benchmark:  b,
				Model:      m,
				Kind:       DiffNew,
				CurrentIPC: cur.IPC(),
			}
			if cell, ok := r.Cell(b, m); ok && cell.N > 1 {
				c.CurrentIPC = cell.IPC.Mean
				c.CurrentN = cell.N
				c.CurrentIPCCI = cell.IPC.CIHalf
			}
			d.Cells = append(d.Cells, c)
		}
	}
	return d
}

func compareCell(r, baseline *ResultSet, bench, model string, tol Tolerances) CellDelta {
	base, _ := baseline.Get(bench, model)
	c := CellDelta{Benchmark: bench, Model: model, BaselineIPC: base.IPC()}
	cur, ok := r.Get(bench, model)
	if !ok {
		c.Kind = DiffMissing
		c.Regression = !tol.AllowMissing
		if res, found := r.Lookup(bench, model); found && res.Error != "" {
			c.Detail = res.Error
		} else {
			c.Detail = "cell absent from current set"
		}
		return c
	}
	c.CurrentIPC = cur.IPC()
	c.BaselineWarmup, c.CurrentWarmup = base.WarmupInsts, cur.WarmupInsts
	if base.WarmupInsts != cur.WarmupInsts {
		// The two sides measure different regions of the program; comparing
		// any counter would be meaningless. Like-for-like only.
		c.Kind = DiffIncomparable
		c.Regression = true
		c.Detail = fmt.Sprintf("warm-up mismatch: baseline %d insts, current %d — align -warmup or refresh the baseline",
			base.WarmupInsts, cur.WarmupInsts)
		return c
	}
	baseCell, _ := baseline.Cell(bench, model)
	curCell, _ := r.Cell(bench, model)
	if baseCell.N > 1 || curCell.N > 1 {
		return compareIntervals(c, baseCell, curCell, tol)
	}
	c.BaselineTraceMisp = base.TraceMispPer1000()
	c.CurrentTraceMisp = cur.TraceMispPer1000()
	c.BaselineRecoveries = base.Recoveries
	c.CurrentRecoveries = cur.Recoveries
	c.BaselineICacheMiss = base.ICMissPer1000()
	c.CurrentICacheMiss = cur.ICMissPer1000()
	c.BaselineDCacheMiss = base.DCMissPer1000()
	c.CurrentDCacheMiss = cur.DCMissPer1000()
	if c.BaselineIPC > 0 {
		c.DeltaPct = 100 * (c.CurrentIPC - c.BaselineIPC) / c.BaselineIPC
	}

	var reasons []string
	if c.DeltaPct < -tol.IPCPct {
		reasons = append(reasons, fmt.Sprintf("IPC dropped %.2f%% (tolerance %.2f%%)", -c.DeltaPct, tol.IPCPct))
	}
	if rise := c.CurrentTraceMisp - c.BaselineTraceMisp; rise > tol.TraceMispPer1000 {
		reasons = append(reasons, fmt.Sprintf("trace mispredictions rose %.2f/1000 insts (tolerance %.2f)",
			rise, tol.TraceMispPer1000))
	}
	if cur.Recoveries > base.Recoveries {
		exceeded := base.Recoveries == 0
		if !exceeded {
			pct := 100 * float64(cur.Recoveries-base.Recoveries) / float64(base.Recoveries)
			exceeded = pct > tol.RecoveriesPct
		}
		if exceeded {
			reasons = append(reasons, fmt.Sprintf("recoveries rose %d -> %d (tolerance %.2f%%)",
				base.Recoveries, cur.Recoveries, tol.RecoveriesPct))
		}
	}
	if rise := c.CurrentICacheMiss - c.BaselineICacheMiss; rise > tol.CacheMissPer1000 {
		reasons = append(reasons, fmt.Sprintf("I-cache misses rose %.2f/1000 insts (tolerance %.2f)",
			rise, tol.CacheMissPer1000))
	}
	if rise := c.CurrentDCacheMiss - c.BaselineDCacheMiss; rise > tol.CacheMissPer1000 {
		reasons = append(reasons, fmt.Sprintf("D-cache misses rose %.2f/1000 insts (tolerance %.2f)",
			rise, tol.CacheMissPer1000))
	}
	if len(reasons) > 0 {
		c.Kind = DiffRegression
		c.Regression = true
		c.Detail = strings.Join(reasons, "; ")
	} else {
		c.Kind = DiffOK
	}
	return c
}

// compareIntervals gates one cell with at least one multi-replicate side:
// every metric regresses only when its mean drifts beyond the tolerance
// AND the two 95% confidence intervals are disjoint in the regressing
// direction. A single-replicate side's interval is its point (CIHalf 0),
// so each condition reduces exactly to the legacy point comparison when
// both sides degenerate — but that case never reaches here (compareCell
// keeps it on the bit-identical legacy path).
func compareIntervals(c CellDelta, base, cur CellStats, tol Tolerances) CellDelta {
	c.BaselineN, c.CurrentN = base.N, cur.N
	c.BaselineIPC, c.CurrentIPC = base.IPC.Mean, cur.IPC.Mean
	c.BaselineIPCCI, c.CurrentIPCCI = base.IPC.CIHalf, cur.IPC.CIHalf
	c.BaselineTraceMisp = base.TraceMispPer1000.Mean
	c.CurrentTraceMisp = cur.TraceMispPer1000.Mean
	c.BaselineRecoveries = uint64(math.Round(base.Recoveries.Mean))
	c.CurrentRecoveries = uint64(math.Round(cur.Recoveries.Mean))
	c.BaselineICacheMiss = base.ICMissPer1000.Mean
	c.CurrentICacheMiss = cur.ICMissPer1000.Mean
	c.BaselineDCacheMiss = base.DCMissPer1000.Mean
	c.CurrentDCacheMiss = cur.DCMissPer1000.Mean
	if c.BaselineIPC > 0 {
		c.DeltaPct = 100 * (c.CurrentIPC - c.BaselineIPC) / c.BaselineIPC
	}

	// Current credibly below/above baseline: the intervals must be disjoint
	// in the regressing direction, not merely the means drifted.
	credDrop := func(b, cu Dist) bool { bLo, _ := b.Interval(); _, cHi := cu.Interval(); return bLo > cHi }
	credRise := func(b, cu Dist) bool { _, bHi := b.Interval(); cLo, _ := cu.Interval(); return cLo > bHi }

	var reasons []string
	if c.DeltaPct < -tol.IPCPct && credDrop(base.IPC, cur.IPC) {
		reasons = append(reasons, fmt.Sprintf("IPC dropped %.2f%% (tolerance %.2f%%, 95%% CIs disjoint)",
			-c.DeltaPct, tol.IPCPct))
	}
	if rise := c.CurrentTraceMisp - c.BaselineTraceMisp; rise > tol.TraceMispPer1000 && credRise(base.TraceMispPer1000, cur.TraceMispPer1000) {
		reasons = append(reasons, fmt.Sprintf("trace mispredictions rose %.2f/1000 insts (tolerance %.2f, 95%% CIs disjoint)",
			rise, tol.TraceMispPer1000))
	}
	if cur.Recoveries.Mean > base.Recoveries.Mean && credRise(base.Recoveries, cur.Recoveries) {
		exceeded := base.Recoveries.Mean == 0
		if !exceeded {
			pct := 100 * (cur.Recoveries.Mean - base.Recoveries.Mean) / base.Recoveries.Mean
			exceeded = pct > tol.RecoveriesPct
		}
		if exceeded {
			reasons = append(reasons, fmt.Sprintf("recoveries rose %d -> %d (tolerance %.2f%%, 95%% CIs disjoint)",
				c.BaselineRecoveries, c.CurrentRecoveries, tol.RecoveriesPct))
		}
	}
	if rise := c.CurrentICacheMiss - c.BaselineICacheMiss; rise > tol.CacheMissPer1000 && credRise(base.ICMissPer1000, cur.ICMissPer1000) {
		reasons = append(reasons, fmt.Sprintf("I-cache misses rose %.2f/1000 insts (tolerance %.2f, 95%% CIs disjoint)",
			rise, tol.CacheMissPer1000))
	}
	if rise := c.CurrentDCacheMiss - c.BaselineDCacheMiss; rise > tol.CacheMissPer1000 && credRise(base.DCMissPer1000, cur.DCMissPer1000) {
		reasons = append(reasons, fmt.Sprintf("D-cache misses rose %.2f/1000 insts (tolerance %.2f, 95%% CIs disjoint)",
			rise, tol.CacheMissPer1000))
	}
	if len(reasons) > 0 {
		c.Kind = DiffRegression
		c.Regression = true
		c.Detail = strings.Join(reasons, "; ")
	} else {
		c.Kind = DiffOK
	}
	return c
}

// Regressions returns the cells that fail the gate, in Diff order.
func (d *Diff) Regressions() []CellDelta {
	var out []CellDelta
	for _, c := range d.Cells {
		if c.Regression {
			out = append(out, c)
		}
	}
	return out
}

// Compared returns how many cells actually had their numbers checked
// (kinds DiffOK and DiffRegression). Incomparable cells — statistics on
// both sides but mismatched warm-ups — do not count: nothing was compared.
func (d *Diff) Compared() int {
	n := 0
	for _, c := range d.Cells {
		if c.Kind == DiffOK || c.Kind == DiffRegression {
			n++
		}
	}
	return n
}

// Incomparable returns how many cells had statistics on both sides but
// mismatched warm-ups.
func (d *Diff) Incomparable() int {
	n := 0
	for _, c := range d.Cells {
		if c.Kind == DiffIncomparable {
			n++
		}
	}
	return n
}

// OK reports whether the gate passed: no cell regressed AND at least one
// IPC comparison actually happened. A baseline that shares no successful
// cells with the current set (empty file, renamed benchmarks/models) would
// otherwise pass vacuously — even under AllowMissing — and that is a
// broken gate, not a green one.
func (d *Diff) OK() bool { return d.Compared() > 0 && len(d.Regressions()) == 0 }

// WriteText renders the diff as an aligned human-readable table, one row
// per cell, followed by a one-line verdict.
func (d *Diff) WriteText(w io.Writer) {
	fmt.Fprintf(w, "RESULTSET DIFF (tolerance: IPC -%.2f%%, trace misp +%.2f/1000, recoveries +%.2f%%, cache miss +%.2f/1000",
		d.Tolerances.IPCPct, d.Tolerances.TraceMispPer1000, d.Tolerances.RecoveriesPct, d.Tolerances.CacheMissPer1000)
	if d.Tolerances.AllowMissing {
		fmt.Fprint(w, ", missing cells allowed")
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "  %-10s %-13s %10s %10s %8s  %s\n",
		"benchmark", "model", "baseline", "current", "delta", "verdict")
	for _, c := range d.Cells {
		verdict := string(c.Kind)
		if c.Regression {
			verdict = "REGRESSION"
		}
		if c.Detail != "" {
			verdict += " (" + c.Detail + ")"
		}
		fmt.Fprintf(w, "  %-10s %-13s %10s %10s %8s  %s\n",
			c.Benchmark, c.Model,
			ipcCIText(c.BaselineIPC, c.BaselineIPCCI, c.BaselineN),
			ipcCIText(c.CurrentIPC, c.CurrentIPCCI, c.CurrentN),
			deltaText(c), verdict)
	}
	switch reg := d.Regressions(); {
	case d.Compared() == 0 && d.Incomparable() > 0:
		fmt.Fprintf(w, "FAIL: %d cells incomparable (warm-up mismatch) and none compared — align -warmup or refresh the baseline\n",
			d.Incomparable())
	case d.Compared() == 0:
		fmt.Fprintln(w, "FAIL: no cells compared — baseline shares no cells with the current set")
	case len(reg) > 0:
		fmt.Fprintf(w, "FAIL: %d of %d cells regressed\n", len(reg), len(d.Cells))
	default:
		fmt.Fprintf(w, "OK: %d cells within tolerance\n", len(d.Cells))
	}
}

func ipcText(ipc float64) string {
	if ipc == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", ipc)
}

// ipcCIText renders one side's IPC, as "mean±half" error-bar notation when
// the side aggregated replicates and the plain point otherwise.
func ipcCIText(ipc, ci float64, n int) string {
	if n > 1 {
		return fmt.Sprintf("%.3f±%.3f", ipc, ci)
	}
	return ipcText(ipc)
}

func deltaText(c CellDelta) string {
	// Incomparable cells never had a delta computed: both IPCs are present
	// but deliberately not compared, so rendering "0.000%" would misread as
	// "no change".
	if c.Kind == DiffIncomparable || c.BaselineIPC == 0 || c.CurrentIPC == 0 {
		return "-"
	}
	if math.Abs(c.DeltaPct) < 0.0005 {
		return "0.000%"
	}
	return fmt.Sprintf("%+.3f%%", c.DeltaPct)
}

package tracep

import (
	"fmt"
	"io"
	"math"
)

// Tolerances bounds the drift a Diff accepts before flagging a cell as a
// regression. The zero value is the strictest gate: any IPC drop at all
// regresses, and every baseline cell must be present in the current set.
type Tolerances struct {
	// IPCPct is the maximum tolerated relative IPC drop, in percent (2.0
	// allows up to a 2% slowdown per cell). Improvements are never
	// regressions.
	IPCPct float64 `json:"ipc_pct"`
	// AllowMissing tolerates baseline cells that are absent from (or
	// failed in) the current set — e.g. when gating a deliberately smaller
	// sweep against a full baseline.
	AllowMissing bool `json:"allow_missing,omitempty"`
}

// DiffKind classifies one cell of a Diff.
type DiffKind string

const (
	// DiffOK: both sets have statistics and the IPC delta is within
	// tolerance (improvements included).
	DiffOK DiffKind = "ok"
	// DiffRegression: both sets have statistics and current IPC dropped
	// beyond Tolerances.IPCPct.
	DiffRegression DiffKind = "regression"
	// DiffMissing: the baseline cell succeeded but the current set has no
	// statistics for it (absent, or failed — Detail carries the error
	// text). A regression unless Tolerances.AllowMissing is set.
	DiffMissing DiffKind = "missing"
	// DiffNew: the current cell succeeded but the baseline has no
	// statistics for it. Informational, never a regression.
	DiffNew DiffKind = "new"
)

// CellDelta is one (benchmark, model) cell of a Diff.
type CellDelta struct {
	Benchmark string   `json:"benchmark"`
	Model     string   `json:"model"`
	Kind      DiffKind `json:"kind"`
	// BaselineIPC and CurrentIPC are 0 when the respective side has no
	// statistics for the cell.
	BaselineIPC float64 `json:"baseline_ipc,omitempty"`
	CurrentIPC  float64 `json:"current_ipc,omitempty"`
	// DeltaPct is the relative IPC change in percent (negative = slower);
	// meaningful only when both sides have statistics.
	DeltaPct float64 `json:"delta_pct,omitempty"`
	// Detail carries context for non-ok cells, e.g. the failed run's error
	// text.
	Detail string `json:"detail,omitempty"`
	// Regression marks the cell as failing the gate under the Diff's
	// tolerances.
	Regression bool `json:"regression,omitempty"`
}

// Diff is the cell-by-cell comparison of a current ResultSet against a
// baseline, under a Tolerances gate. Cells appear in deterministic order:
// the baseline's benchmark-major grid first, then current-only cells in
// the current set's grid order. Diff marshals to JSON directly; WriteText
// renders the human table.
type Diff struct {
	Tolerances Tolerances  `json:"tolerances"`
	Cells      []CellDelta `json:"cells"`
}

// Diff compares r (the current results) against baseline under tol.
// Only cells with statistics participate as successes; failed cells count
// as absent on their side (a baseline failure that now succeeds is
// DiffNew, a baseline success that now fails is DiffMissing with the error
// text in Detail).
func (r *ResultSet) Diff(baseline *ResultSet, tol Tolerances) *Diff {
	d := &Diff{Tolerances: tol}
	seen := make(map[cellKey]bool)
	for _, b := range baseline.Benches() {
		for _, m := range baseline.Models() {
			base, ok := baseline.Get(b, m)
			if !ok {
				continue
			}
			seen[cellKey{b, m}] = true
			d.Cells = append(d.Cells, compareCell(r, b, m, base.IPC(), tol))
		}
	}
	for _, b := range r.Benches() {
		for _, m := range r.Models() {
			if seen[cellKey{b, m}] {
				continue
			}
			cur, ok := r.Get(b, m)
			if !ok {
				continue
			}
			d.Cells = append(d.Cells, CellDelta{
				Benchmark:  b,
				Model:      m,
				Kind:       DiffNew,
				CurrentIPC: cur.IPC(),
			})
		}
	}
	return d
}

func compareCell(r *ResultSet, bench, model string, baseIPC float64, tol Tolerances) CellDelta {
	c := CellDelta{Benchmark: bench, Model: model, BaselineIPC: baseIPC}
	cur, ok := r.Get(bench, model)
	if !ok {
		c.Kind = DiffMissing
		c.Regression = !tol.AllowMissing
		if res, found := r.Lookup(bench, model); found && res.Error != "" {
			c.Detail = res.Error
		} else {
			c.Detail = "cell absent from current set"
		}
		return c
	}
	c.CurrentIPC = cur.IPC()
	if baseIPC > 0 {
		c.DeltaPct = 100 * (c.CurrentIPC - baseIPC) / baseIPC
	}
	if c.DeltaPct < -tol.IPCPct {
		c.Kind = DiffRegression
		c.Regression = true
		c.Detail = fmt.Sprintf("IPC dropped %.2f%% (tolerance %.2f%%)", -c.DeltaPct, tol.IPCPct)
	} else {
		c.Kind = DiffOK
	}
	return c
}

// Regressions returns the cells that fail the gate, in Diff order.
func (d *Diff) Regressions() []CellDelta {
	var out []CellDelta
	for _, c := range d.Cells {
		if c.Regression {
			out = append(out, c)
		}
	}
	return out
}

// Compared returns how many cells had statistics on both sides and so
// actually had their IPC checked (kinds DiffOK and DiffRegression).
func (d *Diff) Compared() int {
	n := 0
	for _, c := range d.Cells {
		if c.Kind == DiffOK || c.Kind == DiffRegression {
			n++
		}
	}
	return n
}

// OK reports whether the gate passed: no cell regressed AND at least one
// IPC comparison actually happened. A baseline that shares no successful
// cells with the current set (empty file, renamed benchmarks/models) would
// otherwise pass vacuously — even under AllowMissing — and that is a
// broken gate, not a green one.
func (d *Diff) OK() bool { return d.Compared() > 0 && len(d.Regressions()) == 0 }

// WriteText renders the diff as an aligned human-readable table, one row
// per cell, followed by a one-line verdict.
func (d *Diff) WriteText(w io.Writer) {
	fmt.Fprintf(w, "RESULTSET DIFF (tolerance: IPC -%.2f%%", d.Tolerances.IPCPct)
	if d.Tolerances.AllowMissing {
		fmt.Fprint(w, ", missing cells allowed")
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "  %-10s %-13s %10s %10s %8s  %s\n",
		"benchmark", "model", "baseline", "current", "delta", "verdict")
	for _, c := range d.Cells {
		verdict := string(c.Kind)
		if c.Regression {
			verdict = "REGRESSION"
		}
		if c.Detail != "" {
			verdict += " (" + c.Detail + ")"
		}
		fmt.Fprintf(w, "  %-10s %-13s %10s %10s %8s  %s\n",
			c.Benchmark, c.Model, ipcText(c.BaselineIPC), ipcText(c.CurrentIPC), deltaText(c), verdict)
	}
	switch reg := d.Regressions(); {
	case d.Compared() == 0:
		fmt.Fprintln(w, "FAIL: no cells compared — baseline shares no cells with the current set")
	case len(reg) > 0:
		fmt.Fprintf(w, "FAIL: %d of %d cells regressed\n", len(reg), len(d.Cells))
	default:
		fmt.Fprintf(w, "OK: %d cells within tolerance\n", len(d.Cells))
	}
}

func ipcText(ipc float64) string {
	if ipc == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", ipc)
}

func deltaText(c CellDelta) string {
	if c.BaselineIPC == 0 || c.CurrentIPC == 0 {
		return "-"
	}
	if math.Abs(c.DeltaPct) < 0.0005 {
		return "0.000%"
	}
	return fmt.Sprintf("%+.3f%%", c.DeltaPct)
}
